// Package shiftsim is the long-horizon adversarial clock-shift engine: it
// drives the Chronos round loop — sample m, trim 2d, C1/C2, K-failure
// panic escalation, exactly the code path internal/chronos runs on the
// wire — over weeks to years of virtual time against attacker-controlled
// servers that serve *adaptive* offsets.
//
// The paper's headline claim ("to shift time on a Chronos NTP client by
// 100ms a strong MitM attacker would need 20 years of effort" — and its
// collapse to hours once DNS poisoning hands the attacker ≥ 2/3 of the
// pool) is a closed-form Markov computation (analysis.TimeToShift over
// stats.ExpectedTrialsToRun). This package validates it empirically: the
// engine measures the first time the client's clock error crosses the
// target, plus the round-level capture-run statistic the closed form
// models, and eval.ShiftStudy (E10) cross-tabulates both against the
// prediction.
//
// Two fidelity levels share one decision core (chronos.Rule / Round):
//
//   - Compressed (default): one engine iteration per sampling attempt.
//     Pool sampling is a real without-replacement draw from the seeded
//     RNG, honest samples carry per-server clock error and latency
//     asymmetry, malicious samples follow the Strategy, and virtual time
//     advances with simnet.FastForward — an O(1) hop between rounds, so
//     the engine sustains hundreds of thousands of simulated rounds per
//     second and a decade-long horizon is minutes of wall time.
//   - Wire (Config.Wire): a full packet-level chronos.Client against
//     ntpserver farms, with the strategy adapted through
//     ntpserver.RequestShiftStrategy. ~1000× slower; used to validate
//     that the compressed dynamics match the real loop.
//
// Everything is deterministic from Config.Seed at any parallelism: each
// trial owns its own simnet.Network and consumes only that network's RNG.
// Determinism is also what makes the E10 checkpoint/resume path sound:
// eval.ShiftStudyCheckpointed persists each trial's Result as it
// completes, and a resumed run replays the stored Results into the same
// per-trial slots — since a trial's bytes depend only on its seed, the
// resumed table is bit-identical to an uninterrupted one (pinned by the
// cmd/attacksim golden test).
//
// Run returns a Result carrying the first-crossing time, round count,
// panic count and the largest accepted update; RunLength < 0 disables
// the round cap so the horizon alone bounds the run. The crossval suite
// (crossval_test.go) holds the greedy strategy's empirical capture-run
// statistics to the closed-form model within the Monte-Carlo CI, and
// BenchmarkShiftEngine tracks the compressed path's rounds/sec — the
// throughput bar that keeps decade-scale horizons tractable — in the
// committed benchmark trajectory (bench/, gated by cmd/benchdiff).
package shiftsim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/clock"
	"chronosntp/internal/simnet"
)

// Errors returned by Run.
var (
	ErrBadPool = errors.New("shiftsim: malicious count exceeds pool size")
	ErrBadAuth = errors.New("shiftsim: invalid auth model")
)

// Config parameterises one long-horizon run.
type Config struct {
	Seed int64 // simulation seed; 0 means 1

	PoolSize  int // Chronos pool size; default 133 (the paper's poisoned pool)
	Malicious int // attacker-controlled members; default 89

	Strategy Strategy       // attacker behaviour; nil means Greedy{}
	Client   chronos.Config // Chronos parameters; zero fields take NDSS'18 defaults

	Target  time.Duration // shift the attacker is after; default 100 ms
	Horizon time.Duration // virtual-time budget; default 30 days

	// MaxRounds caps the number of sync rounds (0 = horizon only).
	MaxRounds int

	// RunLength is the consecutive-capture run whose first completion is
	// recorded in Result.RoundsToRun — the statistic the closed-form bound
	// models. 0 derives ⌈Target/MaxStep⌉; negative disables tracking.
	RunLength int

	HonestErr time.Duration // honest servers' max clock error; default 2 ms
	Jitter    time.Duration // per-sample latency-asymmetry half-width; default 1.5 ms

	DriftPPM float64      // client crystal skew
	Wander   clock.Wander // benign drift random walk, stepped once per round

	// Auth models the authentication arms race (see auth.go): which
	// benign servers the client holds credentials for, how strong they
	// are, and what the on-path attacker does to the auth layer. nil
	// (the default) leaves the engine bit-identical to the pre-auth
	// behaviour. Compressed mode only.
	Auth *AuthModel

	Wire bool // full packet fidelity instead of the compressed fast path
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PoolSize == 0 {
		c.PoolSize = 133
		if c.Malicious == 0 {
			c.Malicious = 89 // the paper's poisoned pool
		}
	}
	if c.Strategy == nil {
		c.Strategy = Greedy{}
	}
	// Small pools sample everything; keep the client shape consistent.
	cc := chronos.NewRule(c.Client).Config()
	if cc.SampleSize > c.PoolSize {
		cc.SampleSize = c.PoolSize
		cc.Trim = cc.SampleSize / 3
		cc.MinReplies = 2 * cc.SampleSize / 3
		cc = chronos.NewRule(cc).Config()
	}
	c.Client = cc
	if c.Target == 0 {
		c.Target = 100 * time.Millisecond
	}
	if c.Horizon == 0 {
		c.Horizon = 30 * 24 * time.Hour
	}
	if c.RunLength == 0 {
		c.RunLength = int(math.Ceil(float64(c.Target) / float64(MaxStep(c.Client))))
	}
	if c.HonestErr == 0 {
		c.HonestErr = 2 * time.Millisecond
	}
	if c.Jitter == 0 {
		c.Jitter = 1500 * time.Microsecond
	}
	if c.Auth != nil {
		// Normalize into a fresh value: the caller's AuthModel may be
		// shared across parallel trials and must not be mutated.
		a := c.Auth.withDefaults()
		c.Auth = &a
	}
	return c
}

// Result is one run's measurement.
type Result struct {
	Rounds   int // sync rounds started
	Attempts int // sampling attempts (incl. re-samples; excl. panic sweeps)

	Updates      int // normal-path clock updates
	Resamples    int
	Panics       int
	PanicUpdates int
	Captures     int // fresh attempts whose survivors were all malicious

	Shifted       bool          // |clock error| reached Target within the horizon
	TimeToShift   time.Duration // virtual time from start to the first crossing (0 if never)
	RoundsToShift int           // sync round of the first crossing (0 if never)

	// RoundsToRun is the round at which RunLength consecutive fresh-attempt
	// captures first completed (0 if never / disabled) — the empirical
	// counterpart of stats.ExpectedTrialsToRun.
	RoundsToRun int

	MaxOffset   time.Duration // largest |clock error| seen
	FinalOffset time.Duration // clock error at the end of the run
	Elapsed     time.Duration // virtual time simulated

	// MaxPush is the largest forward (attacker-direction) normal-path
	// update accepted — the step-size signature an anomaly detector would
	// see (compressed mode only).
	MaxPush time.Duration

	// Auth-model counters, zero unless Config.Auth is set.
	AuthRejected int // samples dropped by the client's credential policy
	Demobilized  int // benign servers killed by believed forged kisses
}

// Run executes one long-horizon simulation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Malicious > cfg.PoolSize || cfg.PoolSize < 1 || cfg.Malicious < 0 {
		return nil, fmt.Errorf("%w: %d/%d", ErrBadPool, cfg.Malicious, cfg.PoolSize)
	}
	if cfg.Auth != nil {
		if err := cfg.Auth.validate(); err != nil {
			return nil, err
		}
		if cfg.Wire {
			return nil, fmt.Errorf("%w: the auth model is compressed-mode only", ErrBadAuth)
		}
	}
	if cfg.Wire {
		return runWire(cfg)
	}
	return newEngine(cfg).run()
}

// Sample runs trials independent engines seeded seed, seed+1, … and
// returns their results in seed order. It is the sequential inner loop of
// the Monte-Carlo studies; callers parallelise across grid points.
func Sample(cfg Config, seed int64, trials int) ([]*Result, error) {
	out := make([]*Result, trials)
	for i := range out {
		c := cfg
		c.Seed = seed + int64(i)
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// engine is the compressed-mode state.
type engine struct {
	cfg    Config
	net    *simnet.Network
	clk    *clock.Clock
	rule   chronos.Rule
	benign int

	honest  []time.Duration // per-benign-server clock error
	idx     []int           // sampling scratch (partial Fisher–Yates)
	offsets []time.Duration // per-attempt sample buffer

	// Auth-model state (see auth.go); zero-valued when cfg.Auth is nil.
	authCount int    // benign indices < authCount are credentialed
	reqAuth   bool   // the client drops samples it cannot verify
	kodDead   []bool // benign servers demobilized by believed kisses

	res    Result
	streak int // current fresh-attempt capture run
	start  time.Time
}

func newEngine(cfg Config) *engine {
	net := simnet.New(simnet.Config{Seed: cfg.Seed})
	rng := net.Rand()
	e := &engine{
		cfg:    cfg,
		net:    net,
		clk:    clock.New(net.Now(), 0, cfg.DriftPPM),
		rule:   chronos.NewRule(cfg.Client),
		benign: cfg.PoolSize - cfg.Malicious,
		idx:    make([]int, cfg.PoolSize),
		honest: make([]time.Duration, cfg.PoolSize-cfg.Malicious),
		// The panic sweep samples the whole pool, so sizing the attempt
		// buffer for it up front keeps the round loop allocation-free
		// (rule evaluation sorts this scratch in place).
		offsets: make([]time.Duration, 0, cfg.PoolSize),
	}
	for i := range e.idx {
		e.idx[i] = i
	}
	// Honest servers keep small fixed clock errors, like ntpserver.Farm.
	for i := range e.honest {
		e.honest[i] = time.Duration(rng.Int63n(int64(2*cfg.HonestErr))) - cfg.HonestErr
	}
	if cfg.Auth != nil {
		e.authCount = int(cfg.Auth.Frac * float64(e.benign))
		if e.authCount > e.benign {
			e.authCount = e.benign
		}
		e.reqAuth = e.authCount > 0
		e.kodDead = make([]bool, e.benign)
	}
	e.start = net.Now()
	return e
}

func (e *engine) run() (*Result, error) {
	end := e.start.Add(e.cfg.Horizon)
	for round := 1; ; round++ {
		if !e.net.Now().Before(end) {
			break
		}
		if e.cfg.MaxRounds > 0 && round > e.cfg.MaxRounds {
			break
		}
		if e.cfg.Wander.Enabled() {
			now := e.net.Now()
			e.clk.SetDrift(now, e.cfg.Wander.Next(e.net.Rand(), e.clk.DriftPPM()))
		}
		e.res.Rounds++
		e.round(round)
		// Re-check the clock at the round boundary as well: with a
		// drifting client the target can be crossed *between* accepted
		// updates (e.g. during a C2-failure stretch), which wire mode
		// would observe at the next event.
		e.observeClock(round, e.net.Now())
		if e.res.Shifted && (e.cfg.RunLength < 0 || e.res.RoundsToRun > 0) {
			break // every requested statistic is in
		}
		e.net.FastForward(e.cfg.Client.SyncInterval)
	}
	now := e.net.Now()
	e.res.FinalOffset = e.clk.Offset(now)
	e.res.Elapsed = now.Sub(e.start)
	return &e.res, nil
}

// round executes one sync round: fresh attempt, up to K re-samples, then
// a panic sweep — the same escalation the packet client walks, via the
// same chronos.Round state machine.
func (e *engine) round(round int) {
	rnd := chronos.NewRound(e.cfg.Client.Retries)
	for attempt := 0; ; attempt++ {
		e.res.Attempts++
		mal := e.sample(e.cfg.Client.SampleSize)
		if attempt == 0 {
			e.observeCapture(round, mal)
		}
		v := e.evaluateAttempt(round, attempt, mal)
		e.net.FastForward(e.cfg.Client.QueryTimeout)
		now := e.net.Now()
		switch rnd.Submit(v) {
		case chronos.Apply:
			e.clk.Step(now, v.Update)
			e.res.Updates++
			if v.Update > e.res.MaxPush {
				e.res.MaxPush = v.Update
			}
			e.observeClock(round, now)
			return
		case chronos.Resample:
			e.res.Resamples++
		case chronos.Panic:
			e.panic(round)
			return
		}
	}
}

// sample draws m distinct pool members (partial Fisher–Yates over the
// persistent index slice) and returns how many are malicious. The drawn
// indices sit in idx[:m]; indices ≥ benign are attacker servers.
func (e *engine) sample(m int) (malicious int) {
	rng := e.net.Rand()
	n := len(e.idx)
	for i := 0; i < m; i++ {
		j := i + rng.Intn(n-i)
		e.idx[i], e.idx[j] = e.idx[j], e.idx[i]
		if e.idx[i] >= e.benign {
			malicious++
		}
	}
	return malicious
}

// evaluateAttempt builds the attempt's offset samples and applies the
// Chronos rule.
func (e *engine) evaluateAttempt(round, attempt, mal int) chronos.Verdict {
	m := e.cfg.Client.SampleSize
	now := e.net.Now()
	theta := e.clk.Offset(now)
	if e.cfg.Auth != nil && e.cfg.Auth.Move == MoveMACStrip {
		// Full MitM: the tamperer owns every reply it lets through, so
		// the strategy sees the whole sample as captured. (Captures in
		// the Result stays the raw hypergeometric sampling statistic.)
		mal = m
	}
	plan := e.cfg.Strategy.Plan(View{
		Round: round, Attempt: attempt,
		Observed:         theta,
		SampledMalicious: mal,
		SampleSize:       m,
		CaptureNeed:      e.rule.CaptureNeed(),
		PoolSize:         e.cfg.PoolSize,
		PoolMalicious:    e.cfg.Malicious,
		Config:           e.cfg.Client,
	})
	e.offsets = e.offsets[:0]
	if e.cfg.Auth == nil {
		for _, id := range e.idx[:m] {
			e.offsets = append(e.offsets, e.sampleOffset(id, theta, plan))
		}
	} else {
		for _, id := range e.idx[:m] {
			if off, ok := e.authOffset(id, theta, plan); ok {
				e.offsets = append(e.offsets, off)
			}
		}
	}
	return e.rule.Evaluate(e.offsets)
}

// sampleOffset is the offset the client computes from pool member id:
// honest servers expose their clock error against the client's, plus
// latency asymmetry; malicious servers land the strategy's plan exactly
// (the attacker compensates for path delay — it stamped the request).
func (e *engine) sampleOffset(id int, theta, plan time.Duration) time.Duration {
	if id >= e.benign {
		return plan
	}
	jitter := time.Duration(0)
	if e.cfg.Jitter > 0 {
		jitter = time.Duration(e.net.Rand().Int63n(int64(2*e.cfg.Jitter))) - e.cfg.Jitter
	}
	return -theta + e.honest[id] + jitter
}

// panic runs the panic-mode full-pool sweep.
func (e *engine) panic(round int) {
	e.res.Panics++
	now := e.net.Now()
	theta := e.clk.Offset(now)
	plan := e.cfg.Strategy.Plan(View{
		Round: round, Panic: true,
		Observed:         theta,
		SampledMalicious: e.cfg.Malicious,
		SampleSize:       e.cfg.PoolSize,
		CaptureNeed:      e.rule.CaptureNeed(),
		PoolSize:         e.cfg.PoolSize,
		PoolMalicious:    e.cfg.Malicious,
		Config:           e.cfg.Client,
	})
	e.offsets = e.offsets[:0]
	if e.cfg.Auth == nil {
		for id := 0; id < e.cfg.PoolSize; id++ {
			e.offsets = append(e.offsets, e.sampleOffset(id, theta, plan))
		}
	} else {
		for id := 0; id < e.cfg.PoolSize; id++ {
			if off, ok := e.authOffset(id, theta, plan); ok {
				e.offsets = append(e.offsets, off)
			}
		}
	}
	upd, ok := e.rule.PanicUpdate(e.offsets)
	e.net.FastForward(e.cfg.Client.QueryTimeout)
	if !ok {
		return
	}
	now = e.net.Now()
	e.clk.Step(now, upd)
	e.res.PanicUpdates++
	e.observeClock(round, now)
}

// observeCapture tracks the fresh-attempt capture-run statistic.
func (e *engine) observeCapture(round, mal int) {
	if mal >= e.rule.CaptureNeed() {
		e.res.Captures++
		e.streak++
	} else {
		e.streak = 0
	}
	if e.cfg.RunLength > 0 && e.res.RoundsToRun == 0 && e.streak >= e.cfg.RunLength {
		e.res.RoundsToRun = round
	}
}

// observeClock updates the shift statistics after a clock step.
func (e *engine) observeClock(round int, now time.Time) {
	off := e.clk.Offset(now)
	if a := absDur(off); a > e.res.MaxOffset {
		e.res.MaxOffset = a
	}
	if !e.res.Shifted && absDur(off) >= e.cfg.Target {
		e.res.Shifted = true
		e.res.TimeToShift = now.Sub(e.start)
		e.res.RoundsToShift = round
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
