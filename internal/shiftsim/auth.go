package shiftsim

import (
	"fmt"
	"sort"
	"time"
)

// This file is the compressed-mode abstraction of the internal/ntpauth
// stack: instead of sealing and verifying real MAC trailers and NTS
// extension fields per packet, the engine models their *decision
// outcome* per sample — accepted, rejected by the client's credential
// policy, or converted into a believed kiss-of-death. The mapping is
// pinned against the packet-level implementation by the chronos auth
// tests (forged KoD, require-auth rejection) so E11's long-horizon
// sweeps inherit wire-validated semantics at engine speed.

// Authentication schemes the model distinguishes. Only their forgery
// resistance matters at round granularity: AuthMD5 stands for a broken
// MAC algorithm the MitM attacker can forge at line rate, the others
// for credentials the attacker cannot mint.
const (
	AuthMD5    = "md5"
	AuthSHA256 = "sha256"
	AuthNTS    = "nts"
)

// authSchemes maps each scheme to whether the modeled attacker can
// forge its credentials.
var authSchemes = map[string]bool{
	AuthMD5:    true,
	AuthSHA256: false,
	AuthNTS:    false,
}

// AuthSchemes lists the valid AuthModel.Scheme values, sorted.
func AuthSchemes() []string {
	out := make([]string, 0, len(authSchemes))
	for name := range authSchemes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SchemeForgeable reports whether the modeled MitM attacker can forge
// credentials under the named scheme (true only for AuthMD5).
func SchemeForgeable(scheme string) bool { return authSchemes[scheme] }

// Attacker moves in the authentication arms race. These are deliberately
// a separate registry from the shift strategies: a Strategy decides the
// *offset* malicious servers serve, a move decides what the on-path
// attacker does to the authentication layer around every reply.
const (
	// MoveShift: no tampering with benign traffic; only the attacker's
	// own pool servers lie (the plain E10 attack, now facing credentials).
	MoveShift = "shift"
	// MoveMACStrip: full MitM — every benign reply is intercepted,
	// stripped of its credentials and rewritten to the strategy's plan
	// (re-sealed only when the scheme is forgeable).
	MoveMACStrip = "mac-strip"
	// MoveForgeKoD: every benign reply is replaced with an
	// unauthenticated DENY kiss; a client that believes it demobilizes
	// that association permanently (RFC 8915 §5.7 is the defence).
	MoveForgeKoD = "forge-kod"
	// MoveCookieReplay: replies from credentialed servers are replaced
	// with replays of old authenticated responses; unique-identifier /
	// origin binding rejects them unless the scheme is forgeable.
	MoveCookieReplay = "cookie-replay"
)

// authMoves maps each move name to its one-line description (reused by
// cmd/attacksim's flag help).
var authMoves = map[string]string{
	MoveShift:        "no auth-layer tampering; only attacker pool servers lie",
	MoveMACStrip:     "strip/rewrite benign replies (re-sealed iff the scheme is forgeable)",
	MoveForgeKoD:     "replace benign replies with unauthenticated DENY kisses",
	MoveCookieReplay: "replay old authenticated responses at credentialed servers",
}

// AuthMoves lists the valid AuthModel.Move values, sorted.
func AuthMoves() []string {
	out := make([]string, 0, len(authMoves))
	for name := range authMoves {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AuthMoveDescription returns the one-line description of a registered
// move ("" for unknown names).
func AuthMoveDescription(name string) string { return authMoves[name] }

// AuthModel parameterises the authentication layer of a compressed run.
// A nil AuthModel on Config leaves the engine bit-identical to the
// pre-auth behaviour (no extra RNG draws, no dropped samples).
type AuthModel struct {
	// Frac is the fraction of *benign* pool servers the client holds
	// credentials for: the first ⌊Frac·benign⌋ server indices are the
	// authenticated ones. Frac > 0 puts the client in require-auth mode
	// (it drops every sample it cannot verify); Frac = 0 models the
	// unauthenticated-but-KoD-compliant baseline.
	Frac float64
	// Scheme is the credential strength: AuthMD5 (attacker-forgeable),
	// AuthSHA256 or AuthNTS. Empty means AuthSHA256.
	Scheme string
	// Move is the attacker's auth-layer behaviour, one of AuthMoves().
	// Empty means MoveShift.
	Move string
}

// withDefaults resolves the zero values.
func (a AuthModel) withDefaults() AuthModel {
	if a.Scheme == "" {
		a.Scheme = AuthSHA256
	}
	if a.Move == "" {
		a.Move = MoveShift
	}
	return a
}

// validate rejects out-of-range fractions and unregistered names.
func (a AuthModel) validate() error {
	if a.Frac < 0 || a.Frac > 1 {
		return fmt.Errorf("%w: auth fraction %v outside [0,1]", ErrBadAuth, a.Frac)
	}
	if _, ok := authSchemes[a.Scheme]; !ok {
		return fmt.Errorf("%w: unknown scheme %q (valid: %v)", ErrBadAuth, a.Scheme, AuthSchemes())
	}
	if _, ok := authMoves[a.Move]; !ok {
		return fmt.Errorf("%w: unknown move %q (valid: %v)", ErrBadAuth, a.Move, AuthMoves())
	}
	return nil
}

// authOffset is sampleOffset behind the authentication layer: it returns
// the offset the client computes from pool member id and whether the
// sample survives verification at all. Rejected samples consume no
// jitter RNG draw — determinism is per configuration, and the nil-model
// path never reaches this function.
func (e *engine) authOffset(id int, theta, plan time.Duration) (time.Duration, bool) {
	a := e.cfg.Auth
	forge := SchemeForgeable(a.Scheme)
	if id >= e.benign {
		// Attacker pool server serving the strategy's plan: a require-auth
		// client only accepts it when the scheme lets the attacker forge.
		if e.reqAuth && !forge {
			e.res.AuthRejected++
			return 0, false
		}
		return plan, true
	}
	authed := id < e.authCount
	switch a.Move {
	case MoveMACStrip:
		// Full MitM: every benign reply is rewritten to the plan.
		if !e.reqAuth {
			return plan, true
		}
		if authed && forge {
			return plan, true // stripped, rewritten and re-sealed
		}
		e.res.AuthRejected++
		return 0, false
	case MoveForgeKoD:
		if e.reqAuth {
			if !authed {
				e.res.AuthRejected++
				return 0, false
			}
			// The kiss is unauthenticated; a require-auth association
			// ignores it and the genuine reply stands.
			return e.sampleOffset(id, theta, plan), true
		}
		if !e.kodDead[id] {
			e.kodDead[id] = true
			e.res.Demobilized++
		}
		return 0, false // believed DENY: no sample now, none ever again
	case MoveCookieReplay:
		if authed {
			if forge {
				return plan, true // forged afresh; no need to replay
			}
			e.res.AuthRejected++ // uid/origin binding rejects the replay
			return 0, false
		}
		if e.reqAuth {
			e.res.AuthRejected++
			return 0, false
		}
		return e.sampleOffset(id, theta, plan), true
	default: // MoveShift: benign traffic untouched
		if e.reqAuth && !authed {
			e.res.AuthRejected++
			return 0, false
		}
		return e.sampleOffset(id, theta, plan), true
	}
}
