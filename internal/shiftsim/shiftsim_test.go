package shiftsim

import (
	"reflect"
	"testing"
	"time"

	"chronosntp/internal/chronos"
	"chronosntp/internal/clock"
)

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Horizon: 24 * time.Hour, DriftPPM: 8, Wander: clock.Wander{StepPPM: 0.2, MaxPPM: 20}}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := Run(Config{Seed: 12, Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunRejectsBadPool(t *testing.T) {
	if _, err := Run(Config{PoolSize: 10, Malicious: 11}); err == nil {
		t.Fatal("accepted malicious > pool")
	}
}

// TestHonestPoolNeverShifts: with zero attacker servers and a drifting
// client, a month of rounds keeps the clock within the honest noise
// floor — the engine's baseline sanity.
func TestHonestPoolNeverShifts(t *testing.T) {
	res, err := Run(Config{
		Seed: 21, PoolSize: 96, Malicious: 0,
		Horizon: 30 * 24 * time.Hour, DriftPPM: 25,
		Wander: clock.Wander{StepPPM: 0.5, MaxPPM: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifted || res.Captures != 0 {
		t.Fatalf("honest pool shifted: %+v", res)
	}
	if res.MaxOffset > 10*time.Millisecond {
		t.Fatalf("honest max offset %v, want within noise", res.MaxOffset)
	}
	if res.Rounds < 30000 {
		t.Fatalf("only %d rounds over 30 days", res.Rounds)
	}
}

// TestBoundHoldsBelowOneThird reproduces the proof's regime empirically:
// at 25% attacker share, a greedy attacker makes no measurable progress
// over a month — the closed form says decades, the round loop agrees.
func TestBoundHoldsBelowOneThird(t *testing.T) {
	res, err := Run(Config{
		Seed: 22, PoolSize: 132, Malicious: 33,
		Horizon: 30 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifted {
		t.Fatalf("25%% attacker shifted the clock within a month: %+v", res)
	}
	if res.MaxOffset >= 100*time.Millisecond {
		t.Fatalf("max offset %v at 25%% attacker share", res.MaxOffset)
	}
}

// TestBoundCollapsesAtTwoThirds: the paper's poisoned pool (89/133) falls
// within the first virtual hours, as the closed form predicts (≈ 14
// rounds expected).
func TestBoundCollapsesAtTwoThirds(t *testing.T) {
	res, err := Run(Config{Seed: 23, Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shifted {
		t.Fatalf("poisoned pool did not shift within a day: %+v", res)
	}
	if res.TimeToShift > 2*time.Hour {
		t.Fatalf("time to 100ms = %v, want hours not days", res.TimeToShift)
	}
	if res.RoundsToRun == 0 || res.RoundsToShift < res.RoundsToRun {
		t.Fatalf("capture-run bookkeeping inconsistent: %+v", res)
	}
}

// TestStealthSmallStepsButSlower: against the poisoned pool the stealth
// drip reaches the target, but no accepted update ever exceeds the drip —
// the step-size signature stays inside honest clock noise, where greedy's
// pushes are full ErrBound-sized jumps. The price is more rounds.
func TestStealthSmallStepsButSlower(t *testing.T) {
	greedy, err := Run(Config{Seed: 24, Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	stealth, err := Run(Config{Seed: 24, Strategy: Stealth{}, Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !stealth.Shifted {
		t.Fatalf("stealth never shifted the poisoned pool: %+v", stealth)
	}
	if stealth.MaxPush > 5*time.Millisecond {
		t.Fatalf("stealth accepted a %v update, want ≤ the 5ms drip", stealth.MaxPush)
	}
	if greedy.MaxPush < 20*time.Millisecond {
		t.Fatalf("greedy's largest push %v, want ≈ MaxStep", greedy.MaxPush)
	}
	if stealth.RoundsToShift <= greedy.RoundsToShift {
		t.Fatalf("stealth (%d rounds) not slower than greedy (%d rounds)",
			stealth.RoundsToShift, greedy.RoundsToShift)
	}
}

// TestStealthStallsAgainstHonestMajority: the same drip against a 25%
// pool share hits the trimmed mean's equilibrium and never gets near the
// target.
func TestStealthStallsAgainstHonestMajority(t *testing.T) {
	res, err := Run(Config{
		Seed: 25, PoolSize: 132, Malicious: 33, Strategy: Stealth{},
		Horizon: 14 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifted || res.MaxOffset >= 50*time.Millisecond {
		t.Fatalf("stealth drip beat an honest majority: %+v", res)
	}
}

// TestIntermittentDodgesPanics compares steady-state panic rates: with an
// unreachable target forcing both attackers to run a full virtual day,
// greedy's broken capture runs exhaust the K re-samples with guaranteed
// C2 failures, while intermittent's C2-passing unwind steps give every
// re-sample a capture-probability chance of recovery — its panic count
// must come out far lower.
func TestIntermittentDodgesPanics(t *testing.T) {
	cfg := Config{Seed: 26, Horizon: 24 * time.Hour, Target: 10 * time.Second, RunLength: -1}
	cfg.Strategy = Greedy{}
	loud, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Strategy = Intermittent{}
	quiet, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loud.Panics < 20 {
		t.Fatalf("greedy steady state shows only %d panics over a day", loud.Panics)
	}
	if quiet.Panics*4 > loud.Panics {
		t.Fatalf("intermittent panics %d not ≪ greedy's %d", quiet.Panics, loud.Panics)
	}
	// And with the real target, the bursts still get there.
	shift, err := Run(Config{Seed: 26, Strategy: Intermittent{}, Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !shift.Shifted {
		t.Fatalf("intermittent never reached the target: %+v", shift)
	}
}

// TestSleeperHonestUntilThreshold: before the trigger round the sleeper
// is indistinguishable from a benign pool (no captures exploited, clock
// within noise); after it, the greedy collapse plays out.
func TestSleeperHonestUntilThreshold(t *testing.T) {
	res, err := Run(Config{
		Seed: 27, Strategy: HonestUntilThreshold{After: 100},
		Horizon: 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shifted {
		t.Fatalf("sleeper never woke: %+v", res)
	}
	if res.RoundsToShift <= 100 {
		t.Fatalf("shift at round %d, before the trigger", res.RoundsToShift)
	}
	if res.RoundsToShift > 100+120 {
		t.Fatalf("post-trigger collapse took %d rounds, want the greedy pace", res.RoundsToShift-100)
	}
}

// TestSmallPoolSamplesEverything: a pool below the default m=15 shrinks
// the sample (and trim/reply floor) consistently instead of wedging.
func TestSmallPoolSamplesEverything(t *testing.T) {
	res, err := Run(Config{Seed: 28, PoolSize: 9, Malicious: 9, Horizon: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shifted {
		t.Fatalf("all-malicious 9-pool never shifted: %+v", res)
	}
	honest, err := Run(Config{Seed: 28, PoolSize: 9, Malicious: 0, Horizon: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if honest.Shifted || honest.Updates == 0 {
		t.Fatalf("honest 9-pool misbehaved: %+v", honest)
	}
}

// TestWireModeMatchesCompressedDynamics runs the full packet client
// against the same pool composition: the poisoned pool collapses in both
// fidelity modes, and an honest-majority wire pool holds.
func TestWireModeMatchesCompressedDynamics(t *testing.T) {
	wire, err := Run(Config{Seed: 31, Wire: true, Horizon: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !wire.Shifted {
		t.Fatalf("wire-mode poisoned pool did not shift: %+v", wire)
	}
	// The wire greedy pushes on every request (it cannot see the sample
	// composition), so it is at least as fast as the reset-disciplined
	// compressed chain's expectation; it must still take > RunLength rounds.
	if wire.RoundsToShift < 4 {
		t.Fatalf("wire shift in %d rounds: faster than one C2-bounded step per round allows", wire.RoundsToShift)
	}
	hold, err := Run(Config{
		Seed: 32, Wire: true, PoolSize: 60, Malicious: 15,
		Horizon: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hold.Shifted {
		t.Fatalf("wire-mode honest majority lost the clock: %+v", hold)
	}
	if hold.Updates == 0 {
		t.Fatalf("wire-mode client never updated: %+v", hold)
	}
}

// TestStrategyRegistry: every registered name builds its strategy and the
// names round-trip.
func TestStrategyRegistry(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("want 4 registered strategies, got %v", names)
	}
	for _, name := range names {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestViewCaptured pins the two capture predicates: sample capture at
// m − d, panic capture at benign ≤ ⌊n/3⌋.
func TestViewCaptured(t *testing.T) {
	cfg := chronos.NewRule(chronos.Config{}).Config()
	v := View{SampledMalicious: 10, CaptureNeed: 10, Config: cfg}
	if !v.Captured() {
		t.Fatal("m−d malicious samples not captured")
	}
	v.SampledMalicious = 9
	if v.Captured() {
		t.Fatal("m−d−1 malicious samples captured")
	}
	p := View{Panic: true, PoolSize: 133, PoolMalicious: 89}
	if !p.Captured() {
		t.Fatal("89/133 panic sweep not captured (benign 44 ≤ ⌊133/3⌋)")
	}
	p.PoolMalicious = 88
	if p.Captured() {
		t.Fatal("88/133 panic sweep captured (benign 45 > 44)")
	}
}

// TestElapsedAccountsRounds: virtual time covers at least the sync
// intervals of every round — the FastForward hops are really advancing
// the network clock.
func TestElapsedAccountsRounds(t *testing.T) {
	res, err := Run(Config{Seed: 33, PoolSize: 96, Malicious: 0, Horizon: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	interval := chronos.NewRule(chronos.Config{}).Config().SyncInterval
	if res.Elapsed < time.Duration(res.Rounds)*interval {
		t.Fatalf("elapsed %v < %d rounds × %v", res.Elapsed, res.Rounds, interval)
	}
	if res.Elapsed < 24*time.Hour {
		t.Fatalf("run stopped before the horizon: %v", res.Elapsed)
	}
}
